//! Property-based tests on the core invariant of a sockets layer: **the
//! byte stream is preserved** — any sequence of sends, with any receive
//! chunking, over any SOVIA configuration or kernel TCP, delivers exactly
//! the sent bytes in order, and the pre-posting constraint is never
//! violated (zero NIC drops).

use std::sync::Arc;

use dsim::{SimDuration, Simulation};
use parking_lot::Mutex;
use proptest::prelude::*;
use simos::HostId;
use sovia_repro::sockets::{api, SockAddr, SockType};
use sovia_repro::sovia::SoviaConfig;
use sovia_repro::testbed;
use sovia_repro::via::ViaNic;

const PORT: u16 = 7;

/// Drive a full client/server exchange with the given send sizes and a
/// receive chunk size; assert byte-exactness and zero drops.
fn roundtrip(config: SoviaConfig, sends: Vec<usize>, recv_chunk: usize, seed: u64) {
    let total: usize = sends.iter().sum();
    let mut sim = Simulation::new();
    let (m0, m1) = testbed::sovia_pair(&sim.handle(), config);
    let (cp, sp) = testbed::procs(&m0, &m1);
    {
        let sp = sp.clone();
        sim.spawn("server", move |ctx| {
            let s = api::socket(ctx, &sp, SockType::Via).unwrap();
            api::bind(ctx, &sp, s, SockAddr::new(HostId(1), PORT)).unwrap();
            api::listen(ctx, &sp, s, 1).unwrap();
            let (c, _) = api::accept(ctx, &sp, s).unwrap();
            let mut got = Vec::with_capacity(total);
            while got.len() < total {
                let d = api::recv(ctx, &sp, c, recv_chunk).unwrap();
                if d.is_empty() {
                    break;
                }
                got.extend_from_slice(&d);
            }
            assert_eq!(got.len(), total, "stream length");
            assert_eq!(
                dsim::rng::check_pattern(seed, 0, &got),
                None,
                "stream content"
            );
            api::close(ctx, &sp, c).unwrap();
            api::close(ctx, &sp, s).unwrap();
        });
    }
    sim.spawn("client", move |ctx| {
        ctx.sleep(SimDuration::from_micros(100));
        let s = api::socket(ctx, &cp, SockType::Via).unwrap();
        api::connect(ctx, &cp, s, SockAddr::new(HostId(1), PORT)).unwrap();
        let mut off = 0u64;
        for n in sends {
            let mut buf = vec![0u8; n];
            dsim::rng::fill_pattern(seed, off, &mut buf);
            api::send_all(ctx, &cp, s, &buf).unwrap();
            off += n as u64;
        }
        api::close(ctx, &cp, s).unwrap();
    });
    sim.run().unwrap();
    // The pre-posting constraint held throughout: nothing was dropped.
    for m in [&m0, &m1] {
        assert_eq!(
            ViaNic::of(m).stats().rx_drops_no_descriptor,
            0,
            "SOVIA must never violate the pre-posting constraint"
        );
    }
}

fn config_strategy() -> impl Strategy<Value = SoviaConfig> {
    prop_oneof![
        Just(SoviaConfig::single()),
        Just(SoviaConfig::flowctrl()),
        Just(SoviaConfig::dacks()),
        Just(SoviaConfig::combine()),
        Just(SoviaConfig::handler()),
        // Odd windows and thresholds.
        (2u32..12, 1u32..6).prop_map(|(w, t)| SoviaConfig {
            flow_control: true,
            window: w,
            delayed_acks: true,
            ack_threshold: t.min(w - 1).max(1),
            ..SoviaConfig::single()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a whole simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn sovia_preserves_byte_streams(
        config in config_strategy(),
        sends in prop::collection::vec(1usize..60_000, 1..12),
        recv_chunk in 1usize..40_000,
        seed in any::<u64>(),
    ) {
        roundtrip(config, sends, recv_chunk, seed);
    }

    #[test]
    fn tcp_preserves_byte_streams(
        sends in prop::collection::vec(1usize..40_000, 1..8),
        recv_chunk in 1usize..20_000,
        seed in any::<u64>(),
    ) {
        let total: usize = sends.iter().sum();
        let mut sim = Simulation::new();
        let (m0, m1) = testbed::tcp_ethernet_pair(&sim.handle());
        let (cp, sp) = testbed::procs(&m0, &m1);
        let ok = Arc::new(Mutex::new(false));
        {
            let sp = sp.clone();
            let ok = Arc::clone(&ok);
            sim.spawn("server", move |ctx| {
                let s = api::socket(ctx, &sp, SockType::Stream).unwrap();
                api::bind(ctx, &sp, s, SockAddr::new(HostId(1), PORT)).unwrap();
                api::listen(ctx, &sp, s, 1).unwrap();
                let (c, _) = api::accept(ctx, &sp, s).unwrap();
                let mut got = Vec::with_capacity(total);
                while got.len() < total {
                    let d = api::recv(ctx, &sp, c, recv_chunk).unwrap();
                    if d.is_empty() {
                        break;
                    }
                    got.extend_from_slice(&d);
                }
                assert_eq!(got.len(), total);
                assert_eq!(dsim::rng::check_pattern(seed, 0, &got), None);
                *ok.lock() = true;
                api::close(ctx, &sp, c).unwrap();
                api::close(ctx, &sp, s).unwrap();
            });
        }
        sim.spawn("client", move |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
            let s = api::socket(ctx, &cp, SockType::Stream).unwrap();
            api::connect(ctx, &cp, s, SockAddr::new(HostId(1), PORT)).unwrap();
            let mut off = 0u64;
            for n in sends {
                let mut buf = vec![0u8; n];
                dsim::rng::fill_pattern(seed, off, &mut buf);
                api::send_all(ctx, &cp, s, &buf).unwrap();
                off += n as u64;
            }
            api::close(ctx, &cp, s).unwrap();
        });
        sim.run().unwrap();
        prop_assert!(*ok.lock());
    }
}
