//! Property-based tests on the substrates: the simulated virtual-memory
//! system (COW/fork/pin invariants) and the wire codecs.

use proptest::prelude::*;

use sovia_repro::apps::rpc::msg::{record_mark, CallMsg, ReplyMsg, ReplyStat};
use sovia_repro::apps::rpc::xdr::{XdrDecoder, XdrEncoder};
use sovia_repro::simos::mem::{
    dma_read, dma_write, unpin, AddressSpace, PhysMem, PAGE_SIZE,
};
use sovia_repro::tcpip::{IpPacket, TcpFlags, TcpSegment};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// A random interleaving of writes in parent and child after fork must
    /// behave like two independent memories seeded with the same contents.
    #[test]
    fn cow_fork_behaves_like_deep_copy(
        len in 1usize..5 * PAGE_SIZE,
        init in any::<u64>(),
        ops in prop::collection::vec(
            (any::<bool>(), 0usize..5 * PAGE_SIZE, 1usize..600, any::<u8>()),
            0..24
        ),
    ) {
        let mut phys = PhysMem::new();
        let mut parent = AddressSpace::new();
        let va = parent.map_fresh(&mut phys, len, false);

        // Seed the region.
        let mut seed_data = vec![0u8; len];
        dsim::rng::fill_pattern(init, 0, &mut seed_data);
        parent.write(&mut phys, va, &seed_data);

        let mut child = parent.fork(&mut phys);

        // The reference model: two plain byte vectors.
        let mut model_parent = seed_data.clone();
        let mut model_child = seed_data;

        for (to_child, off, n, byte) in ops {
            let off = off % len;
            let n = n.min(len - off);
            if n == 0 {
                continue;
            }
            let data = vec![byte; n];
            let target_va = va.add(off as u64);
            if to_child {
                child.write(&mut phys, target_va, &data);
                model_child[off..off + n].copy_from_slice(&data);
            } else {
                parent.write(&mut phys, target_va, &data);
                model_parent[off..off + n].copy_from_slice(&data);
            }
        }
        let mut got_p = vec![0u8; len];
        parent.read(&phys, va, &mut got_p);
        let mut got_c = vec![0u8; len];
        child.read(&phys, va, &mut got_c);
        prop_assert_eq!(got_p, model_parent);
        prop_assert_eq!(got_c, model_child);
    }

    /// DMA through a pin reads/writes exactly the pinned window, at any
    /// alignment, and pins keep frames alive across unmaps.
    #[test]
    fn pin_dma_window_is_exact(
        pages in 1usize..6,
        start_off in 0usize..PAGE_SIZE,
        len in 1usize..3 * PAGE_SIZE,
        fill in any::<u64>(),
    ) {
        let region_len = pages * PAGE_SIZE;
        prop_assume!(start_off + len <= region_len);
        let mut phys = PhysMem::new();
        let mut asp = AddressSpace::new();
        let va = asp.map_fresh(&mut phys, region_len, false);
        let pin = asp.pin(&mut phys, va.add(start_off as u64), len);

        let mut data = vec![0u8; len];
        dsim::rng::fill_pattern(fill, 0, &mut data);
        dma_write(&mut phys, &pin, 0, &data);
        prop_assert_eq!(dma_read(&phys, &pin, 0, len), data.clone());

        // Visible through the mapping too (no fork happened).
        let mut via_map = vec![0u8; len];
        asp.read(&phys, va.add(start_off as u64), &mut via_map);
        prop_assert_eq!(via_map, data.clone());

        // Frames survive unmap while pinned.
        asp.unmap(&mut phys, va, region_len);
        prop_assert_eq!(dma_read(&phys, &pin, 0, len), data);
        unpin(&mut phys, &pin);
        prop_assert_eq!(phys.frames_in_use(), 0);
    }

    /// XDR strings/opaques/ints round-trip for arbitrary content.
    #[test]
    fn xdr_roundtrip(
        a in any::<u32>(),
        b in any::<i32>(),
        s in "\\PC{0,120}",
        blob in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut e = XdrEncoder::new();
        e.put_u32(a).put_i32(b).put_string(&s).put_opaque(&blob);
        let bytes = e.finish();
        prop_assert_eq!(bytes.len() % 4, 0, "XDR is 4-byte aligned");
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_u32().unwrap(), a);
        prop_assert_eq!(d.get_i32().unwrap(), b);
        prop_assert_eq!(d.get_string().unwrap(), s);
        prop_assert_eq!(d.get_opaque().unwrap(), blob);
        prop_assert_eq!(d.remaining(), 0);
    }

    /// RPC CALL/REPLY messages round-trip, and the record mark matches.
    #[test]
    fn rpc_messages_roundtrip(
        xid in any::<u32>(),
        prog in any::<u32>(),
        vers in any::<u32>(),
        proc_num in any::<u32>(),
        args in prop::collection::vec(any::<u8>(), 0..200).prop_map(|v| {
            // args must be 4-aligned to parse back identically
            let mut v = v;
            while v.len() % 4 != 0 { v.push(0); }
            v
        }),
    ) {
        let call = CallMsg { xid, prog, vers, proc_num, args };
        let body = call.encode();
        prop_assert_eq!(CallMsg::decode(&body).unwrap(), call);
        let framed = record_mark(&body);
        prop_assert_eq!(framed.len(), body.len() + 4);

        let reply = ReplyMsg { xid, stat: ReplyStat::Success, result: body.clone() };
        prop_assert_eq!(ReplyMsg::decode(&reply.encode()).unwrap(), reply);
    }

    /// TCP/IP packets round-trip through the byte codec.
    #[test]
    fn ip_packets_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..32,
        wnd in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..1460),
    ) {
        let p = IpPacket {
            src: simos::HostId(src),
            dst: simos::HostId(dst),
            tcp: TcpSegment {
                src_port: sport,
                dst_port: dport,
                seq,
                ack,
                flags: TcpFlags(flags),
                wnd,
                payload: payload.into(),
            },
        };
        prop_assert_eq!(IpPacket::decode(&p.encode()), Some(p));
    }
}
