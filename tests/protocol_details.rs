//! Focused protocol-detail tests across the stack: the observable
//! counters and edge cases that the broad integration tests do not pin
//! down individually.

use std::sync::Arc;

use dsim::{SimDuration, Simulation};
use parking_lot::Mutex;
use simos::HostId;
use sovia_repro::sockets::{api, SockAddr, SockError, SockType};
use sovia_repro::sovia::{ConnStats, SovSocket, SoviaConfig};
use sovia_repro::testbed;

const PORT: u16 = 7;

/// Run a bidirectional workload and capture both sides' connection stats.
fn run_and_stats(
    config: SoviaConfig,
    client_msgs: usize,
    msg_len: usize,
) -> (ConnStats, ConnStats) {
    let mut sim = Simulation::new();
    let (m0, m1) = testbed::sovia_pair(&sim.handle(), config);
    let (cp, sp) = testbed::procs(&m0, &m1);
    let server_stats = Arc::new(Mutex::new(None));
    let client_stats = Arc::new(Mutex::new(None));
    {
        let sp = sp.clone();
        let server_stats = Arc::clone(&server_stats);
        sim.spawn("server", move |ctx| {
            let s = api::socket(ctx, &sp, SockType::Via).unwrap();
            api::bind(ctx, &sp, s, SockAddr::new(HostId(1), PORT)).unwrap();
            api::listen(ctx, &sp, s, 1).unwrap();
            let (c, _) = api::accept(ctx, &sp, s).unwrap();
            // Echo everything back (bidirectional traffic enables
            // piggybacking).
            loop {
                let d = api::recv(ctx, &sp, c, 64 * 1024).unwrap();
                if d.is_empty() {
                    break;
                }
                api::send_all(ctx, &sp, c, &d).unwrap();
            }
            let table = api::SocketTable::of(&sp);
            let sov = table.get(c).unwrap().as_any().downcast::<SovSocket>().unwrap();
            *server_stats.lock() = sov.connection().map(|c| c.stats());
            api::close(ctx, &sp, c).unwrap();
            api::close(ctx, &sp, s).unwrap();
        });
    }
    {
        let client_stats = Arc::clone(&client_stats);
        sim.spawn("client", move |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
            let s = api::socket(ctx, &cp, SockType::Via).unwrap();
            api::connect(ctx, &cp, s, SockAddr::new(HostId(1), PORT)).unwrap();
            let msg = vec![0xAAu8; msg_len];
            for _ in 0..client_msgs {
                api::send_all(ctx, &cp, s, &msg).unwrap();
                let _ = api::recv_exact(ctx, &cp, s, msg_len).unwrap();
            }
            let table = api::SocketTable::of(&cp);
            let sov = table.get(s).unwrap().as_any().downcast::<SovSocket>().unwrap();
            *client_stats.lock() = sov.connection().map(|c| c.stats());
            api::close(ctx, &cp, s).unwrap();
        });
    }
    sim.run().unwrap();
    let c = client_stats.lock().take().unwrap();
    let s = server_stats.lock().take().unwrap();
    (c, s)
}

#[test]
fn dacks_piggyback_on_bidirectional_traffic() {
    // With delayed ACKs and echo traffic, acknowledgments should ride on
    // reverse DATA packets instead of standalone ACKs.
    let (client, server) = run_and_stats(SoviaConfig::dacks(), 40, 512);
    assert_eq!(client.data_sent, 40);
    assert_eq!(server.data_sent, 40);
    assert!(
        client.acks_piggybacked + server.acks_piggybacked > 0,
        "echo traffic must piggyback acknowledgments"
    );
    // Ping-pong consumes one packet per recv; with t=16 never reached and
    // piggybacking available, standalone ACKs should be rare.
    assert!(
        server.acks_sent <= 5,
        "standalone ACKs should be rare under piggybacking, got {}",
        server.acks_sent
    );
}

#[test]
fn stop_and_wait_sends_one_ack_per_packet() {
    let (client, server) = run_and_stats(SoviaConfig::single(), 20, 256);
    assert_eq!(client.data_sent, 20);
    // Without delayed acks every consumed DATA is acknowledged (possibly
    // piggybacked on the echo, but SINGLE disables piggybacking paths
    // only for *delayed* acks — here each consume acks immediately).
    assert!(
        server.acks_sent + server.acks_piggybacked >= 20,
        "every packet must be acknowledged: sent={} piggy={}",
        server.acks_sent,
        server.acks_piggybacked
    );
}

#[test]
fn large_sends_use_zero_copy_registration() {
    // 3 sends of 3 chunks each (96 KB per send at 32 KB chunks).
    let (client, _server) = run_and_stats(SoviaConfig::dacks(), 3, 96 * 1024);
    assert_eq!(
        client.zero_copy_registrations, 9,
        "each 32 KB chunk of a large send registers once"
    );
    // 96 KB = 3 chunks per send.
    assert_eq!(client.data_sent, 9);
}

#[test]
fn small_sends_never_register() {
    let (client, _server) = run_and_stats(SoviaConfig::dacks(), 10, 2048);
    assert_eq!(
        client.zero_copy_registrations, 0,
        "sends at the 2 KB threshold are copied, not registered"
    );
}

#[test]
fn combining_counts_combined_sends() {
    let mut sim = Simulation::new();
    let (m0, m1) = testbed::sovia_pair(&sim.handle(), SoviaConfig::combine());
    let (cp, sp) = testbed::procs(&m0, &m1);
    {
        let sp = sp.clone();
        sim.spawn("server", move |ctx| {
            let s = api::socket(ctx, &sp, SockType::Via).unwrap();
            api::bind(ctx, &sp, s, SockAddr::new(HostId(1), PORT)).unwrap();
            api::listen(ctx, &sp, s, 1).unwrap();
            let (c, _) = api::accept(ctx, &sp, s).unwrap();
            let _ = api::recv_exact(ctx, &sp, c, 64 * 50).unwrap();
            api::close(ctx, &sp, c).unwrap();
            api::close(ctx, &sp, s).unwrap();
        });
    }
    let stats = Arc::new(Mutex::new(None));
    {
        let stats = Arc::clone(&stats);
        sim.spawn("client", move |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
            let s = api::socket(ctx, &cp, SockType::Via).unwrap();
            api::connect(ctx, &cp, s, SockAddr::new(HostId(1), PORT)).unwrap();
            for _ in 0..50 {
                api::send_all(ctx, &cp, s, &[0x11u8; 64]).unwrap();
            }
            // Keep the connection handle: close() flushes the pending
            // combine buffer, and the stats must include that tail.
            let table = api::SocketTable::of(&cp);
            let sov = table.get(s).unwrap().as_any().downcast::<SovSocket>().unwrap();
            let conn = sov.connection().unwrap();
            api::close(ctx, &cp, s).unwrap();
            *stats.lock() = Some(conn.stats());
        });
    }
    sim.run().unwrap();
    let st = stats.lock().take().unwrap();
    assert_eq!(st.combined_sends, 50, "every small send was combined");
    assert!(
        st.data_sent < 50,
        "combined sends must produce fewer packets, got {}",
        st.data_sent
    );
    assert_eq!(st.bytes_sent, 64 * 50);
}

#[test]
fn send_to_fresh_socket_is_not_connected() {
    let mut sim = Simulation::new();
    let (m0, _m1) = testbed::sovia_pair(&sim.handle(), SoviaConfig::default());
    let p = m0.spawn_process("p");
    sim.spawn("main", move |ctx| {
        let s = api::socket(ctx, &p, SockType::Via).unwrap();
        assert_eq!(
            api::send(ctx, &p, s, b"x").unwrap_err(),
            SockError::NotConnected
        );
        assert_eq!(
            api::recv(ctx, &p, s, 1).unwrap_err(),
            SockError::NotConnected
        );
        // accept on a non-listening socket is invalid.
        assert_eq!(api::accept(ctx, &p, s).unwrap_err(), SockError::InvalidState);
        api::close(ctx, &p, s).unwrap();
        // And the descriptor is gone afterwards.
        assert_eq!(api::send(ctx, &p, s, b"x").unwrap_err(), SockError::BadFd);
    });
    sim.run().unwrap();
}

#[test]
fn sovia_connections_on_three_hosts_simultaneously() {
    // One client talks to servers on two other hosts over one NIC each —
    // the link fabric and per-connection state must not interfere.
    let mut sim = Simulation::new();
    let machines = testbed::sovia_cluster(&sim.handle(), 3, SoviaConfig::default());
    for (i, m) in machines.iter().enumerate().skip(1) {
        let p = m.spawn_process("server");
        let tag = i as u64;
        sim.spawn(format!("server{i}"), move |ctx| {
            let host = p.machine().id();
            let s = api::socket(ctx, &p, SockType::Via).unwrap();
            api::bind(ctx, &p, s, SockAddr::new(host, PORT)).unwrap();
            api::listen(ctx, &p, s, 1).unwrap();
            let (c, _) = api::accept(ctx, &p, s).unwrap();
            let d = api::recv_exact(ctx, &p, c, 10_000).unwrap();
            assert_eq!(dsim::rng::check_pattern(tag, 0, &d), None);
            // Reply with the doubled tag pattern.
            let mut out = vec![0u8; 5_000];
            dsim::rng::fill_pattern(tag * 2, 0, &mut out);
            api::send_all(ctx, &p, c, &out).unwrap();
            api::close(ctx, &p, c).unwrap();
            api::close(ctx, &p, s).unwrap();
        });
    }
    let client = machines[0].spawn_process("client");
    sim.spawn("client", move |ctx| {
        ctx.sleep(SimDuration::from_micros(200));
        let mut fds = Vec::new();
        for i in 1u32..3 {
            let s = api::socket(ctx, &client, SockType::Via).unwrap();
            api::connect(ctx, &client, s, SockAddr::new(HostId(i), PORT)).unwrap();
            let mut msg = vec![0u8; 10_000];
            dsim::rng::fill_pattern(u64::from(i), 0, &mut msg);
            api::send_all(ctx, &client, s, &msg).unwrap();
            fds.push((i, s));
        }
        // Interleaved replies from both hosts.
        for (i, s) in fds {
            let d = api::recv_exact(ctx, &client, s, 5_000).unwrap();
            assert_eq!(dsim::rng::check_pattern(u64::from(i) * 2, 0, &d), None);
            api::close(ctx, &client, s).unwrap();
        }
    });
    sim.run().unwrap();
}
