//! Edge-case tests on the substrates that the protocol suites exercise
//! only implicitly.

use std::sync::Arc;

use dsim::sync::{SimQueue, SimSemaphore};
use dsim::{SimDuration, SimError, Simulation};
use parking_lot::Mutex;
use sovia_repro::simos::fs::OpenMode;
use sovia_repro::simos::{HostCosts, HostId, Machine};
use sovia_repro::via::{
    Descriptor, MemRegion, ViAttributes, ViState, ViaNic, ViaNicId, WaitMode,
};

#[test]
fn spawn_delayed_starts_on_time() {
    let mut sim = Simulation::new();
    let started = Arc::new(Mutex::new(0u64));
    let s2 = Arc::clone(&started);
    sim.handle()
        .spawn_delayed("late", SimDuration::from_micros(250), move |ctx| {
            *s2.lock() = ctx.now().as_nanos();
        });
    sim.run().unwrap();
    assert_eq!(*started.lock(), 250_000);
}

#[test]
fn semaphore_try_acquire_never_blocks() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let sem = SimSemaphore::new(&h, 1);
    sim.spawn("main", move |_ctx| {
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    });
    sim.run().unwrap();
}

#[test]
fn queue_len_tracks_pushes_and_pops() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let q = SimQueue::<u8>::new(&h);
    sim.spawn("main", move |_ctx| {
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    });
    sim.run().unwrap();
}

#[test]
fn deadlock_error_is_catchable_and_names_the_culprit() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let q = SimQueue::<u8>::new(&h);
    sim.spawn("starved-consumer", move |ctx| {
        let _ = q.pop(ctx); // nobody will push
    });
    match sim.run() {
        Err(SimError::Deadlock { parked, .. }) => {
            assert_eq!(parked, vec!["starved-consumer".to_string()]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn file_seek_and_overwrite() {
    let sim = Simulation::new();
    let m = Machine::new(&sim.handle(), HostId(0), "m", HostCosts::free());
    m.fs().add_file("f", b"0123456789".to_vec());
    let w = m.fs().open("f", OpenMode::Append).unwrap();
    w.seek(4);
    w.write(b"XY").unwrap();
    assert_eq!(m.fs().contents("f").unwrap(), b"0123XY6789");
    // Append positioned the handle at EOF originally; seek moved it.
    assert_eq!(w.len(), 10);
}

#[test]
fn via_post_send_on_unconnected_vi_fails_cleanly() {
    let mut sim = Simulation::new();
    let m0 = Machine::new(&sim.handle(), HostId(0), "m0", HostCosts::free());
    let n0 = ViaNic::attach(&m0, ViaNicId(0), simnic::clan1000_nic());
    sim.spawn("main", move |ctx| {
        let p = m0.spawn_process("p");
        let vi = n0.create_vi(ViAttributes::default());
        assert_eq!(vi.state(), ViState::Idle);
        let va = p.alloc(ctx, 4096);
        let region = MemRegion::register(ctx, &p, va, 4096);
        let err = vi
            .post_send(ctx, Descriptor::send(region, 0, 8, None))
            .unwrap_err();
        assert_eq!(err, sovia_repro::via::VipError::NotConnected);
        // Receives may be pre-posted before connecting (and must be).
        let va2 = p.alloc(ctx, 4096);
        let r2 = MemRegion::register(ctx, &p, va2, 4096);
        vi.post_recv(ctx, Descriptor::recv(r2, 0, 64)).unwrap();
        assert_eq!(vi.recv_pending(), 1);
    });
    sim.run().unwrap();
}

#[test]
fn via_zero_byte_message_with_immediate_data() {
    // SOVIA's ACK packets are exactly this: no payload, all semantics in
    // the 32-bit immediate field.
    let mut sim = Simulation::new();
    let m0 = Machine::new(&sim.handle(), HostId(0), "m0", HostCosts::free());
    let m1 = Machine::new(&sim.handle(), HostId(1), "m1", HostCosts::free());
    let n0 = ViaNic::attach(&m0, ViaNicId(0), simnic::clan1000_nic());
    let n1 = ViaNic::attach(&m1, ViaNicId(1), simnic::clan1000_nic());
    ViaNic::connect_pair(&n0, &n1, simnic::clan_link());
    let got = Arc::new(Mutex::new(None));
    {
        let n1 = Arc::clone(&n1);
        let got = Arc::clone(&got);
        sim.spawn("rx", move |ctx| {
            let p = m1.spawn_process("rx");
            let vi = n1.create_vi(ViAttributes::default());
            n1.listen(9);
            let va = p.alloc(ctx, 4096);
            let region = MemRegion::register(ctx, &p, va, 4096);
            vi.post_recv(ctx, Descriptor::recv(region, 0, 64)).unwrap();
            let pending = n1.connect_wait(ctx, 9);
            n1.connect_accept(ctx, &pending, &vi).unwrap();
            let d = vi.recv_wait(ctx, WaitMode::Poll).unwrap();
            let st = d.status();
            *got.lock() = Some((st.xfer_len, st.immediate));
        });
    }
    {
        let n0 = Arc::clone(&n0);
        sim.spawn("tx", move |ctx| {
            let p = m0.spawn_process("tx");
            let vi = n0.create_vi(ViAttributes::default());
            ctx.sleep(SimDuration::from_micros(50));
            n0.connect_request(ctx, &vi, ViaNicId(1), 9).unwrap();
            let va = p.alloc(ctx, 4096);
            let region = MemRegion::register(ctx, &p, va, 4096);
            vi.post_send(ctx, Descriptor::send(region, 0, 0, Some(0xCAFE)))
                .unwrap();
            let _ = vi.send_wait(ctx, WaitMode::Poll).unwrap();
        });
    }
    sim.run().unwrap();
    assert_eq!(*got.lock(), Some((0, Some(0xCAFE))));
}

#[test]
fn kernel_cpu_contention_is_visible_in_timing() {
    // Two "kernel" workers charging 50 us each on one machine finish at
    // 50 and 100 us; on two machines both finish at 50 us.
    fn run(machines: usize) -> Vec<u64> {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ms: Vec<Machine> = (0..machines)
            .map(|i| Machine::new(&h, HostId(i as u32), format!("m{i}"), HostCosts::free()))
            .collect();
        let ends = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let m = ms[i % machines].clone();
            let ends = Arc::clone(&ends);
            sim.spawn(format!("w{i}"), move |ctx| {
                sovia_repro::simos::KernelCpu::of(&m)
                    .charge(ctx, SimDuration::from_micros(50));
                ends.lock().push(ctx.now().as_nanos());
            });
        }
        sim.run().unwrap();
        let mut v = ends.lock().clone();
        v.sort_unstable();
        v
    }
    assert_eq!(run(1), vec![50_000, 100_000]);
    assert_eq!(run(2), vec![50_000, 50_000]);
}
